// Package cmgr implements the Connection Manager (§3.3): the service that
// allocates ATM connections between settops and servers.  It is the
// system's most elaborately replicated service — "the Connection Manager
// actually uses both forms of replication.  It has active replicas for
// each neighborhood ..., and the neighborhood replicas are backed up by
// passive replicas" (§5.2) — and, with the name service, one of only two
// services that require replicated state (§10.1.1): each primary mirrors
// its allocation table to its backups so a promoted backup can manage (and
// release) the connections the hardware still carries.
//
// It also enforces the per-settop resource limits of §7.3: a settop may
// hold only a bounded number of connections, which contains buggy clients.
package cmgr

import (
	"sync"
	"time"

	"itv/internal/atm"
	"itv/internal/core"
	"itv/internal/names"
	"itv/internal/orb"
	"itv/internal/oref"
	"itv/internal/wire"
)

// TypeID is the IDL interface name.
const TypeID = "itv.ConnectionManager"

// ContextPath is the replicated context holding per-neighborhood replicas;
// clients resolve "svc/cmgr" (their neighborhood's replica via the
// neighborhood selector) or "svc/cmgr/<n>" explicitly (Fig. 4).
const ContextPath = "svc/cmgr"

// DefaultMaxConnsPerSettop is the §7.3 resource limit.
const DefaultMaxConnsPerSettop = 4

// Alloc describes one admitted connection.
type Alloc struct {
	ID     string
	Settop string
	Server string
	Rate   int64
	Kind   int64 // atm.Kind
}

func (a *Alloc) MarshalWire(e *wire.Encoder) {
	e.PutString(a.ID)
	e.PutString(a.Settop)
	e.PutString(a.Server)
	e.PutInt(a.Rate)
	e.PutInt(a.Kind)
}

func (a *Alloc) UnmarshalWire(d *wire.Decoder) {
	a.ID = d.String()
	a.Settop = d.String()
	a.Server = d.String()
	a.Rate = d.Int()
	a.Kind = d.Int()
}

func putAllocs(e *wire.Encoder, as []Alloc) {
	e.PutUint(uint64(len(as)))
	for i := range as {
		as[i].MarshalWire(e)
	}
}

func getAllocs(d *wire.Decoder) []Alloc {
	n := d.Count()
	out := make([]Alloc, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		var a Alloc
		a.UnmarshalWire(d)
		out = append(out, a)
	}
	return out
}

// Service is one Connection Manager replica for one neighborhood.
type Service struct {
	sess    *core.Session
	fabric  *atm.Network
	scope   string // neighborhood number, e.g. "1"
	ref     oref.Ref
	elector *core.Elector

	// MaxConnsPerSettop bounds a settop's simultaneous connections (§7.3).
	MaxConnsPerSettop int
	// MirrorInterval is how often a backup (re)registers with the primary.
	MirrorInterval time.Duration

	mu       sync.Mutex
	table    map[string]Alloc
	perTop   map[string]int
	mirrors  map[string]oref.Ref // mirror key -> callback ref
	usage    map[string]*Usage   // §7.3 accounting, per settop
	openedAt map[string]time.Time
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// New builds a Connection Manager replica for the given neighborhood
// scope, operating the shared ATM fabric.
func New(sess *core.Session, fabric *atm.Network, scope string) *Service {
	s := &Service{
		sess:              sess,
		fabric:            fabric,
		scope:             scope,
		MaxConnsPerSettop: DefaultMaxConnsPerSettop,
		MirrorInterval:    5 * time.Second,
		table:             make(map[string]Alloc),
		perTop:            make(map[string]int),
		mirrors:           make(map[string]oref.Ref),
		usage:             make(map[string]*Usage),
		openedAt:          make(map[string]time.Time),
		stop:              make(chan struct{}),
		done:              make(chan struct{}),
	}
	s.ref = sess.Ep.Register("cmgr-"+scope, &skel{s: s})
	s.elector = sess.NewElector(ContextPath+"/"+scope, s.ref)
	return s
}

// Ref returns this replica's object reference.
func (s *Service) Ref() oref.Ref { return s.ref }

// Elector exposes the replica's primary/backup elector for interval tuning.
func (s *Service) Elector() *core.Elector { return s.elector }

// IsPrimary reports whether this replica serves its neighborhood.
func (s *Service) IsPrimary() bool { return s.elector.IsPrimary() }

// Start begins the election campaign and the backup mirror loop.
func (s *Service) Start() {
	s.ensureContexts()
	s.elector.Start()
	go s.run()
}

// Close stops the replica cleanly (unbinding if primary).
func (s *Service) Close() { s.shutdown(true) }

// Abort stops the replica with crash semantics (no unbind).
func (s *Service) Abort() { s.shutdown(false) }

func (s *Service) shutdown(clean bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	if clean {
		s.elector.Close()
	} else {
		s.elector.Abandon()
	}
	s.sess.Ep.Unregister("cmgr-" + s.scope)
}

// ensureContexts creates svc/cmgr as a neighborhood-selected replicated
// context so that resolving "svc/cmgr" finds the caller's replica (§5.1).
func (s *Service) ensureContexts() {
	if _, err := s.sess.Root.BindNewContext("svc"); err != nil && !orb.IsApp(err, orb.ExcAlreadyBound) {
		return
	}
	_, _ = s.sess.Root.BindReplContext(ContextPath, names.PolicyNeighborhood)
}

func (s *Service) run() {
	defer close(s.done)
	tick := s.sess.Clk.NewTicker(s.MirrorInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C():
			if !s.elector.IsPrimary() {
				s.ensureContexts()
				s.registerAsMirror()
			}
		}
	}
}

// registerAsMirror tells the current primary to stream state changes here,
// so this backup can take over with the connection table intact (§10.1.1).
func (s *Service) registerAsMirror() {
	primary, err := s.sess.Root.Resolve(ContextPath + "/" + s.scope)
	if err != nil || primary.Equal(s.ref) {
		return
	}
	_ = s.sess.Ep.Invoke(primary, "addMirror",
		func(e *wire.Encoder) { s.ref.MarshalWire(e) }, nil)
}

// Allocate admits a connection (primary only).
func (s *Service) Allocate(settop, server string, rate int64, kind atm.Kind) (Alloc, error) {
	if !s.elector.IsPrimary() {
		return Alloc{}, orb.Errf(orb.ExcUnavailable, "cmgr %s: not primary", s.scope)
	}
	s.mu.Lock()
	if s.perTop[settop] >= s.MaxConnsPerSettop {
		s.accountDenied(settop)
		s.mu.Unlock()
		return Alloc{}, orb.Errf(orb.ExcExhausted,
			"settop %s at its connection limit (%d)", settop, s.MaxConnsPerSettop)
	}
	s.mu.Unlock()

	conn, err := s.fabric.Allocate(server, settop, rate, kind)
	if err != nil {
		return Alloc{}, orb.Errf(orb.ExcExhausted, "%v", err)
	}
	a := Alloc{ID: conn.ID, Settop: settop, Server: server, Rate: conn.Rate, Kind: int64(kind)}
	s.mu.Lock()
	s.table[a.ID] = a
	s.perTop[settop]++
	s.accountOpen(settop)
	s.openedAt[a.ID] = s.sess.Clk.Now()
	mirrors := s.mirrorRefs()
	s.mu.Unlock()
	s.pushMirrors(mirrors, "mirrorPut", func(e *wire.Encoder) { a.MarshalWire(e) })
	return a, nil
}

// Release frees a connection.
func (s *Service) Release(id string) error {
	s.mu.Lock()
	a, ok := s.table[id]
	if ok {
		delete(s.table, id)
		if s.perTop[a.Settop] > 0 {
			s.perTop[a.Settop]--
		}
		if opened, tracked := s.openedAt[id]; tracked {
			s.accountClose(a, opened)
			delete(s.openedAt, id)
		}
	}
	mirrors := s.mirrorRefs()
	s.mu.Unlock()
	if !ok {
		return orb.Errf(orb.ExcNotFound, "no connection %q", id)
	}
	_ = s.fabric.Release(id)
	s.pushMirrors(mirrors, "mirrorDel", func(e *wire.Encoder) { e.PutString(id) })
	return nil
}

// List returns the allocation table — the query the MMS uses to rebuild
// its state after a fail-over (§10.1.1).
func (s *Service) List() []Alloc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alloc, 0, len(s.table))
	for _, a := range s.table {
		out = append(out, a)
	}
	return out
}

// Held reports how many connections a settop currently holds.
func (s *Service) Held(settop string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perTop[settop]
}

func (s *Service) mirrorRefs() []oref.Ref {
	out := make([]oref.Ref, 0, len(s.mirrors))
	for _, r := range s.mirrors {
		out = append(out, r)
	}
	return out
}

func (s *Service) pushMirrors(mirrors []oref.Ref, method string, put func(*wire.Encoder)) {
	for _, m := range mirrors {
		if err := s.sess.Ep.Invoke(m, method, put, nil); err != nil && orb.Dead(err) {
			s.mu.Lock()
			delete(s.mirrors, m.Key())
			s.mu.Unlock()
		}
	}
}

// addMirror registers a backup and immediately sends it a full snapshot.
func (s *Service) addMirror(ref oref.Ref) {
	s.mu.Lock()
	s.mirrors[ref.Key()] = ref
	snapshot := make([]Alloc, 0, len(s.table))
	for _, a := range s.table {
		snapshot = append(snapshot, a)
	}
	s.mu.Unlock()
	_ = s.sess.Ep.Invoke(ref, "mirrorSnapshot",
		func(e *wire.Encoder) { putAllocs(e, snapshot) }, nil)
}

// Mirror application (backup side).
func (s *Service) mirrorPut(a Alloc) {
	s.mu.Lock()
	if _, dup := s.table[a.ID]; !dup {
		s.table[a.ID] = a
		s.perTop[a.Settop]++
	}
	s.mu.Unlock()
}

func (s *Service) mirrorDel(id string) {
	s.mu.Lock()
	if a, ok := s.table[id]; ok {
		delete(s.table, id)
		if s.perTop[a.Settop] > 0 {
			s.perTop[a.Settop]--
		}
	}
	s.mu.Unlock()
}

func (s *Service) mirrorSnapshot(as []Alloc) {
	s.mu.Lock()
	s.table = make(map[string]Alloc, len(as))
	s.perTop = make(map[string]int)
	for _, a := range as {
		s.table[a.ID] = a
		s.perTop[a.Settop]++
	}
	s.mu.Unlock()
}

type skel struct{ s *Service }

func (k *skel) TypeID() string { return TypeID }

func (k *skel) Dispatch(c *orb.ServerCall) error {
	s := k.s
	switch c.Method() {
	case "allocate":
		settop := c.Args().String()
		server := c.Args().String()
		rate := c.Args().Int()
		kind := atm.Kind(c.Args().Int())
		a, err := s.Allocate(settop, server, rate, kind)
		if err != nil {
			return err
		}
		a.MarshalWire(c.Results())
		return nil
	case "release":
		return s.Release(c.Args().String())
	case "list":
		putAllocs(c.Results(), s.List())
		return nil
	case "addMirror":
		var ref oref.Ref
		ref.UnmarshalWire(c.Args())
		s.addMirror(ref)
		return nil
	case "mirrorPut":
		var a Alloc
		a.UnmarshalWire(c.Args())
		s.mirrorPut(a)
		return nil
	case "mirrorDel":
		s.mirrorDel(c.Args().String())
		return nil
	case "mirrorSnapshot":
		s.mirrorSnapshot(getAllocs(c.Args()))
		return nil
	case "usage":
		report := s.UsageReport()
		e := c.Results()
		e.PutUint(uint64(len(report)))
		for i := range report {
			report[i].MarshalWire(e)
		}
		return nil
	default:
		return orb.ErrNoSuchMethod
	}
}

// Stub is the client proxy for a Connection Manager.
type Stub struct {
	Ep  names.Invoker
	Ref oref.Ref
}

// Allocate admits a connection between settop and server.
func (s Stub) Allocate(settop, server string, rate int64, kind atm.Kind) (Alloc, error) {
	var a Alloc
	err := s.Ep.Invoke(s.Ref, "allocate",
		func(e *wire.Encoder) {
			e.PutString(settop)
			e.PutString(server)
			e.PutInt(rate)
			e.PutInt(int64(kind))
		},
		func(d *wire.Decoder) error { a.UnmarshalWire(d); return nil })
	return a, err
}

// Release frees a connection.
func (s Stub) Release(id string) error {
	return s.Ep.Invoke(s.Ref, "release",
		func(e *wire.Encoder) { e.PutString(id) }, nil)
}

// List fetches the allocation table.
func (s Stub) List() ([]Alloc, error) {
	var out []Alloc
	err := s.Ep.Invoke(s.Ref, "list", nil,
		func(d *wire.Decoder) error { out = getAllocs(d); return nil })
	return out, err
}
