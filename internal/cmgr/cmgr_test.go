package cmgr

import (
	"testing"
	"time"

	"itv/internal/atm"
	"itv/internal/clock"
	"itv/internal/core"
	"itv/internal/names"
	"itv/internal/orb"
	"itv/internal/oref"
	"itv/internal/transport"
)

type fixture struct {
	t      *testing.T
	clk    *clock.Fake
	nw     *transport.Network
	ns     *names.Replica
	fabric *atm.Network
	client *core.Session
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{t: t, clk: clock.NewFake(), nw: transport.NewNetwork()}
	ns, err := names.NewReplica(f.nw.Host("192.168.0.1"), f.clk, names.Config{
		Peers: []string{"192.168.0.1:555"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ns = ns
	t.Cleanup(ns.Close)
	f.waitFor("ns master", ns.IsMaster)

	f.fabric = atm.New()
	f.fabric.AddServer("192.168.0.1", 100*atm.Mbps)
	f.fabric.AddServer("192.168.0.2", 100*atm.Mbps)
	for _, h := range []string{"10.1.0.5", "10.2.0.5"} {
		f.fabric.AddSettop(h)
	}

	ep, err := orb.NewEndpoint(f.nw.Host("10.1.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Close)
	f.client = core.NewSession(ep, ns.RootRef(), f.clk)
	return f
}

func (f *fixture) waitFor(what string, cond func() bool) {
	f.t.Helper()
	if !f.clk.Await(time.Second, 600, cond) {
		f.t.Fatalf("condition never held: %s", what)
	}
}

// newReplica creates and starts a cmgr replica on the given server host.
func (f *fixture) newReplica(host, scope string) *Service {
	f.t.Helper()
	ep, err := orb.NewEndpoint(f.nw.Host(host))
	if err != nil {
		f.t.Fatal(err)
	}
	sess := core.NewSession(ep, f.ns.RootRef(), f.clk)
	s := New(sess, f.fabric, scope)
	s.elector.RetryInterval = 2 * time.Second
	s.Start()
	f.t.Cleanup(func() { s.Close(); ep.Close() })
	return s
}

func TestPrimaryAllocatesAndReleases(t *testing.T) {
	f := newFixture(t)
	s := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary", s.IsPrimary)

	a, err := s.Allocate("10.1.0.5", "192.168.0.1", 4*atm.Mbps, atm.CBR)
	if err != nil {
		t.Fatal(err)
	}
	if f.fabric.Conns() != 1 {
		t.Fatal("fabric connection missing")
	}
	if s.Held("10.1.0.5") != 1 {
		t.Fatal("per-settop count wrong")
	}
	if err := s.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	if f.fabric.Conns() != 0 || s.Held("10.1.0.5") != 0 {
		t.Fatal("release incomplete")
	}
	if err := s.Release(a.ID); !orb.IsApp(err, orb.ExcNotFound) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestResourceLimitPerSettop(t *testing.T) {
	// §7.3: "A settop client is only allowed to open a certain number of
	// network connections ... If the settop attempts to acquire more
	// resources ... its request is denied."
	f := newFixture(t)
	s := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary", s.IsPrimary)
	for i := 0; i < DefaultMaxConnsPerSettop; i++ {
		if _, err := s.Allocate("10.1.0.5", "192.168.0.1", 1*atm.Mbps, atm.CBR); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Allocate("10.1.0.5", "192.168.0.1", 1*atm.Mbps, atm.CBR)
	if !orb.IsApp(err, orb.ExcExhausted) {
		t.Fatalf("over-limit err = %v", err)
	}
}

func TestBandwidthExhaustionSurfaced(t *testing.T) {
	f := newFixture(t)
	s := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary", s.IsPrimary)
	// The settop's 6 Mb/s downstream refuses a second 4 Mb/s stream.
	if _, err := s.Allocate("10.1.0.5", "192.168.0.1", 4*atm.Mbps, atm.CBR); err != nil {
		t.Fatal(err)
	}
	_, err := s.Allocate("10.1.0.5", "192.168.0.1", 4*atm.Mbps, atm.CBR)
	if !orb.IsApp(err, orb.ExcExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestNeighborhoodResolutionViaSelector(t *testing.T) {
	f := newFixture(t)
	s1 := f.newReplica("192.168.0.1", "1")
	s2 := f.newReplica("192.168.0.2", "2")
	f.waitFor("both primaries", func() bool { return s1.IsPrimary() && s2.IsPrimary() })

	// A settop in neighborhood 2 resolving "svc/cmgr" reaches replica 2.
	ep, err := orb.NewEndpoint(f.nw.Host("10.2.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	sess := core.NewSession(ep, f.ns.RootRef(), f.clk)
	ref, err := sess.Root.Resolve(ContextPath)
	if err != nil {
		t.Fatal(err)
	}
	if ref != s2.Ref() {
		t.Fatalf("neighborhood 2 resolved %v, want replica 2", ref)
	}
	// Explicit indexing works too (Fig. 4's "svc/cmgr/1").
	ref1, err := sess.Root.Resolve(ContextPath + "/1")
	if err != nil || ref1 != s1.Ref() {
		t.Fatalf("explicit index = %v, %v", ref1, err)
	}
}

func TestBackupTakesOverWithMirroredState(t *testing.T) {
	f := newFixture(t)
	f.ns.SetChecker(pingChecker{f.client.Ep})

	primary := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary elected", primary.IsPrimary)
	backup := f.newReplica("192.168.0.2", "1")

	// Let the backup register as a mirror, then allocate.
	f.waitFor("mirror registered", func() bool {
		primary.mu.Lock()
		defer primary.mu.Unlock()
		return len(primary.mirrors) == 1
	})
	a, err := primary.Allocate("10.1.0.5", "192.168.0.1", 3*atm.Mbps, atm.CBR)
	if err != nil {
		t.Fatal(err)
	}
	f.waitFor("allocation mirrored", func() bool {
		backup.mu.Lock()
		defer backup.mu.Unlock()
		_, ok := backup.table[a.ID]
		return ok
	})

	// Primary crashes; the backup is promoted with the table intact and
	// can release the connection the hardware still carries.
	primary.sess.Ep.Close()
	f.waitFor("backup promoted", backup.IsPrimary)
	if err := backup.Release(a.ID); err != nil {
		t.Fatalf("promoted backup could not release mirrored conn: %v", err)
	}
	if f.fabric.Conns() != 0 {
		t.Fatal("fabric still holds the connection")
	}
}

func TestRemoteStub(t *testing.T) {
	f := newFixture(t)
	s := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary", s.IsPrimary)
	stub := Stub{Ep: f.client.Ep, Ref: s.Ref()}
	a, err := stub.Allocate("10.1.0.5", "192.168.0.1", 2*atm.Mbps, atm.CBR)
	if err != nil {
		t.Fatal(err)
	}
	list, err := stub.List()
	if err != nil || len(list) != 1 || list[0].ID != a.ID {
		t.Fatalf("List = %v, %v", list, err)
	}
	if err := stub.Release(a.ID); err != nil {
		t.Fatal(err)
	}
}

// pingChecker stands in for the RAS.
type pingChecker struct{ ep *orb.Endpoint }

func (p pingChecker) CheckStatus(refs []oref.Ref) (map[string]bool, error) {
	out := make(map[string]bool, len(refs))
	for _, r := range refs {
		out[r.Key()] = !orb.Dead(p.ep.Ping(r))
	}
	return out, nil
}

func TestResourceAccounting(t *testing.T) {
	// §7.3's future work, implemented: per-settop usage and buggy-client
	// detection through denied-request counts.
	f := newFixture(t)
	s := f.newReplica("192.168.0.1", "1")
	f.waitFor("primary", s.IsPrimary)

	// A well-behaved settop: one 4 Mb/s stream for 100 simulated seconds.
	a, err := s.Allocate("10.1.0.5", "192.168.0.1", 4*atm.Mbps, atm.CBR)
	if err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(100 * time.Second)
	if err := s.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	u := s.UsageOf("10.1.0.5")
	if u.Opened != 1 || u.Denied != 0 {
		t.Fatalf("usage = %+v", u)
	}
	// 4 Mb/s x 100 s = 400 megabit-seconds.
	if u.MbitSeconds < 399 || u.MbitSeconds > 401 {
		t.Fatalf("MbitSeconds = %f, want ~400", u.MbitSeconds)
	}

	// A buggy settop hammers past its connection limit.
	for i := 0; i < DefaultMaxConnsPerSettop; i++ {
		if _, err := s.Allocate("10.2.0.5", "192.168.0.2", 100_000, atm.CBR); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Allocate("10.2.0.5", "192.168.0.2", 100_000, atm.CBR); !orb.IsApp(err, orb.ExcExhausted) {
			t.Fatalf("err = %v", err)
		}
	}
	suspects := s.Suspects(5)
	if len(suspects) != 1 || suspects[0] != "10.2.0.5" {
		t.Fatalf("suspects = %v", suspects)
	}
	if s.Suspects(6) != nil {
		t.Fatal("threshold not applied")
	}

	// The report travels over the IDL.
	stub := Stub{Ep: f.client.Ep, Ref: s.Ref()}
	report, err := stub.Usage()
	if err != nil || len(report) != 2 {
		t.Fatalf("report = %v, %v", report, err)
	}
	if report[0].Settop != "10.1.0.5" || report[1].Denied != 5 {
		t.Fatalf("report rows = %+v", report)
	}
}
