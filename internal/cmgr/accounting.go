package cmgr

import (
	"sort"
	"time"

	"itv/internal/wire"
)

// Resource accounting — the second half of §7.3, which the paper leaves as
// future work: "accounting is needed both for discovering buggy clients
// and for charging properly for resource usage.  We currently do not
// attempt to do resource accounting."  This implements it: the Connection
// Manager records, per settop, how many connections it opened, how many
// requests were denied at the resource limit, and the bandwidth-time it
// consumed — the inputs for both billing and buggy-client detection.

// Usage is one settop's accounted consumption.
type Usage struct {
	Settop string
	// Opened counts admitted connections over the settop's lifetime.
	Opened int64
	// Denied counts requests refused at the §7.3 resource limit — the
	// buggy-client signal.
	Denied int64
	// MbitSeconds is consumed bandwidth-time (megabit-seconds), the
	// charging quantity.
	MbitSeconds float64
}

func (u *Usage) MarshalWire(e *wire.Encoder) {
	e.PutString(u.Settop)
	e.PutInt(u.Opened)
	e.PutInt(u.Denied)
	e.PutFloat(u.MbitSeconds)
}

func (u *Usage) UnmarshalWire(d *wire.Decoder) {
	u.Settop = d.String()
	u.Opened = d.Int()
	u.Denied = d.Int()
	u.MbitSeconds = d.Float()
}

// account records an admitted connection.
func (s *Service) accountOpen(settop string) {
	rec := s.usage[settop]
	if rec == nil {
		rec = &Usage{Settop: settop}
		s.usage[settop] = rec
	}
	rec.Opened++
}

// accountDenied records a refusal at the resource limit.
func (s *Service) accountDenied(settop string) {
	rec := s.usage[settop]
	if rec == nil {
		rec = &Usage{Settop: settop}
		s.usage[settop] = rec
	}
	rec.Denied++
}

// accountClose charges the connection's bandwidth-time.
func (s *Service) accountClose(a Alloc, opened time.Time) {
	rec := s.usage[a.Settop]
	if rec == nil {
		rec = &Usage{Settop: a.Settop}
		s.usage[a.Settop] = rec
	}
	seconds := s.sess.Clk.Now().Sub(opened).Seconds()
	if seconds < 0 {
		seconds = 0
	}
	rec.MbitSeconds += float64(a.Rate) * seconds / 1e6
}

// UsageReport returns per-settop accounting, sorted by settop.
func (s *Service) UsageReport() []Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Usage, 0, len(s.usage))
	for _, rec := range s.usage {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Settop < out[j].Settop })
	return out
}

// Suspects returns settops whose denied-request count reached the
// threshold — candidates for the buggy-client investigation §7.3 hopes
// catches applications "before [they are] allowed onto a production
// network".
func (s *Service) Suspects(deniedThreshold int64) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for settop, rec := range s.usage {
		if rec.Denied >= deniedThreshold {
			out = append(out, settop)
		}
	}
	sort.Strings(out)
	return out
}

// UsageOf fetches one settop's record.
func (s *Service) UsageOf(settop string) Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec := s.usage[settop]; rec != nil {
		return *rec
	}
	return Usage{Settop: settop}
}

// Usage (stub): fetch the accounting table from a replica.
func (st Stub) Usage() ([]Usage, error) {
	var out []Usage
	err := st.Ep.Invoke(st.Ref, "usage", nil,
		func(d *wire.Decoder) error {
			n := d.Count()
			out = make([]Usage, 0, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				var u Usage
				u.UnmarshalWire(d)
				out = append(out, u)
			}
			return nil
		})
	return out, err
}
