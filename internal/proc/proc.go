// Package proc models UNIX service processes (§6.1) without fork/exec: a
// process is a cancellable group of goroutines plus the teardown actions
// that make its death observable — closing its ORB endpoints so every
// reference to its objects becomes invalid, exactly what a real crash does
// to a process's sockets.
//
// The Server Service Controller spawns services as processes, waits on
// them (the paper's wait()-based monitoring), and restarts them on failure.
package proc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrKilled is the exit status of a process terminated by Kill.
var ErrKilled = errors.New("proc: killed")

// Process is one simulated service process.
type Process struct {
	pid  int
	name string

	mu       sync.Mutex
	teardown []func()
	err      error
	exited   bool
	done     chan struct{}
}

// PID returns the process id, unique within its Table.
func (p *Process) PID() int { return p.pid }

// Name returns the service name the process was spawned for.
func (p *Process) Name() string { return p.name }

// Done is closed when the process has exited.
func (p *Process) Done() <-chan struct{} { return p.done }

// Exited reports whether the process has exited.
func (p *Process) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Err returns the exit status: nil for a clean stop requested through
// Exit(nil), ErrKilled for a kill, or the service's own failure.
func (p *Process) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// OnKill registers a teardown action to run when the process dies, in
// reverse registration order.  Services register their endpoints' Close
// here, which is what invalidates their object references on crash.
func (p *Process) OnKill(fn func()) {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		fn()
		return
	}
	p.teardown = append(p.teardown, fn)
	p.mu.Unlock()
}

// Exit terminates the process from inside — the service announcing its own
// death (a crash when err != nil).  It is idempotent; the first call wins.
func (p *Process) Exit(err error) {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	p.err = err
	td := p.teardown
	p.teardown = nil
	p.mu.Unlock()
	for i := len(td) - 1; i >= 0; i-- {
		td[i]()
	}
	close(p.done)
}

// Kill terminates the process from outside.
func (p *Process) Kill() { p.Exit(ErrKilled) }

func (p *Process) String() string {
	return fmt.Sprintf("proc[%d %s]", p.pid, p.name)
}

// Table is a per-server process table.
type Table struct {
	mu    sync.Mutex
	next  int
	procs map[int]*Process
}

// NewTable returns an empty process table.
func NewTable() *Table {
	return &Table{next: 1, procs: make(map[int]*Process)}
}

// Spawn creates a running process entry.  The caller starts the service's
// goroutines itself and wires their shutdown through OnKill.
func (t *Table) Spawn(name string) *Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &Process{pid: t.next, name: name, done: make(chan struct{})}
	t.next++
	t.procs[p.pid] = p
	return p
}

// Get returns the process with the given pid, or nil.
func (t *Table) Get(pid int) *Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.procs[pid]
}

// Reap removes an exited process from the table (the wait() analogue).
// It reports whether the pid was present and exited.
func (t *Table) Reap(pid int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok || !p.Exited() {
		return false
	}
	delete(t.procs, pid)
	return true
}

// KillAll kills every process in the table — the SSC-crash semantics: all
// services started by the SSC exit with it (§6.1).
func (t *Table) KillAll() {
	t.mu.Lock()
	procs := make([]*Process, 0, len(t.procs))
	for _, p := range t.procs {
		procs = append(procs, p)
	}
	t.procs = make(map[int]*Process)
	t.mu.Unlock()
	for _, p := range procs {
		p.Kill()
	}
}

// List returns the table's processes sorted by pid.
func (t *Table) List() []*Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Process, 0, len(t.procs))
	for _, p := range t.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}
