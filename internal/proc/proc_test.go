package proc

import (
	"errors"
	"testing"
)

func TestSpawnAssignsUniquePIDs(t *testing.T) {
	tb := NewTable()
	a := tb.Spawn("mds")
	b := tb.Spawn("rds")
	if a.PID() == b.PID() {
		t.Fatal("duplicate pids")
	}
	if tb.Get(a.PID()) != a || tb.Get(b.PID()) != b {
		t.Fatal("Get mismatch")
	}
}

func TestExitRunsTeardownInReverseOrder(t *testing.T) {
	tb := NewTable()
	p := tb.Spawn("svc")
	var order []int
	p.OnKill(func() { order = append(order, 1) })
	p.OnKill(func() { order = append(order, 2) })
	p.Exit(nil)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("teardown order = %v", order)
	}
	if !p.Exited() {
		t.Fatal("not exited")
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done not closed")
	}
}

func TestExitIdempotent(t *testing.T) {
	tb := NewTable()
	p := tb.Spawn("svc")
	failure := errors.New("segfault")
	p.Exit(failure)
	p.Exit(nil)
	p.Kill()
	if !errors.Is(p.Err(), failure) {
		t.Fatalf("Err = %v, want first exit's error", p.Err())
	}
}

func TestOnKillAfterExitRunsImmediately(t *testing.T) {
	tb := NewTable()
	p := tb.Spawn("svc")
	p.Kill()
	ran := false
	p.OnKill(func() { ran = true })
	if !ran {
		t.Fatal("late OnKill not executed")
	}
}

func TestKillSetsErrKilled(t *testing.T) {
	tb := NewTable()
	p := tb.Spawn("svc")
	p.Kill()
	if !errors.Is(p.Err(), ErrKilled) {
		t.Fatalf("Err = %v", p.Err())
	}
}

func TestReap(t *testing.T) {
	tb := NewTable()
	p := tb.Spawn("svc")
	if tb.Reap(p.PID()) {
		t.Fatal("reaped a running process")
	}
	p.Exit(nil)
	if !tb.Reap(p.PID()) {
		t.Fatal("failed to reap exited process")
	}
	if tb.Get(p.PID()) != nil {
		t.Fatal("reaped process still in table")
	}
	if tb.Reap(p.PID()) {
		t.Fatal("double reap succeeded")
	}
}

func TestKillAll(t *testing.T) {
	tb := NewTable()
	a := tb.Spawn("a")
	b := tb.Spawn("b")
	tb.KillAll()
	if !a.Exited() || !b.Exited() {
		t.Fatal("KillAll left processes running")
	}
	if len(tb.List()) != 0 {
		t.Fatal("table not emptied")
	}
}

func TestListSorted(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 5; i++ {
		tb.Spawn("s")
	}
	ps := tb.List()
	for i := 1; i < len(ps); i++ {
		if ps[i].PID() <= ps[i-1].PID() {
			t.Fatal("List not sorted by pid")
		}
	}
}
