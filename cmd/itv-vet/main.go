// Command itv-vet runs the project's static-analysis suite: eleven checks
// that enforce the OCS concurrency and failure-handling invariants
// (mortal references, no mutex across RPC, injected clocks, stoppable
// goroutines, errors.Is, metric naming, pooled-buffer ownership, context
// propagation, lock ordering).  See internal/lint and the "Static
// invariants" section of DESIGN.md.
//
// Usage:
//
//	itv-vet [flags] [packages]
//
//	itv-vet ./...                 # whole module (the CI gate)
//	itv-vet -json ./... > vet.json
//	itv-vet -checks rawerrcmp -fix ./...
//	itv-vet -since origin/main ./...   # findings only in changed files
//	itv-vet -annotate ./...            # GitHub ::error annotations
//	itv-vet -list
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad
// patterns, unparsable source).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"itv/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array (for CI diffing)")
		fix      = flag.Bool("fix", false, "mechanically rewrite rawerrcmp findings to errors.Is")
		list     = flag.Bool("list", false, "list registered checks and exit")
		checks   = flag.String("checks", "", "comma-separated checks to run (default: all)")
		typeErrs = flag.Bool("typeerrors", false, "print tolerated type-check errors to stderr")
		since    = flag.String("since", "", "restrict findings to files changed since this git ref (plus untracked files)")
		annotate = flag.Bool("annotate", false, "also emit findings as GitHub workflow annotations (::error file=...)")
	)
	flag.Parse()

	if *list {
		for _, c := range lint.All() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	selected, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}

	var changed map[string]bool
	if *since != "" {
		changed, err = changedSince(loader.ModRoot, *since)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itv-vet: -since:", err)
			return 2
		}
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			// A failed load is the hardest state to debug blind; show every
			// line the loader produced (errors.Join renders one per line).
			fmt.Fprintf(os.Stderr, "itv-vet: %s: load failed:\n", dir)
			for _, line := range strings.Split(err.Error(), "\n") {
				fmt.Fprintf(os.Stderr, "itv-vet:   %s\n", line)
			}
			return 2
		}
		if *typeErrs {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "itv-vet: typecheck: %v\n", te)
			}
		}
		pkgs = append(pkgs, pkg)
	}

	if *fix {
		files, err := lint.FixRawErrCmp(pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itv-vet: fix:", err)
			return 2
		}
		for _, f := range files {
			fmt.Println("fixed", f)
		}
		return 0
	}

	diags := lint.Run(pkgs, selected)
	if changed != nil {
		kept := diags[:0]
		for _, d := range diags {
			if changed[d.File] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "itv-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *annotate {
		// Annotations ride stdout for the workflow-command parser unless
		// JSON already owns it.
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		for _, d := range diags {
			file := d.File
			if rel, err := filepath.Rel(loader.ModRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::[%s] %s\n",
				file, d.Line, d.Col, d.Check, annotationEscape(d.Message))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "itv-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// changedSince returns the absolute paths of .go files changed since ref,
// plus untracked ones — the working set a fast local run cares about.
func changedSince(modRoot, ref string) (map[string]bool, error) {
	set := make(map[string]bool)
	collect := func(args ...string) error {
		cmd := exec.Command("git", append([]string{"-C", modRoot}, args...)...)
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
				return fmt.Errorf("git %s: %s", strings.Join(args, " "), strings.TrimSpace(string(ee.Stderr)))
			}
			return fmt.Errorf("git %s: %v", strings.Join(args, " "), err)
		}
		for _, line := range strings.Split(string(out), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || !strings.HasSuffix(line, ".go") {
				continue
			}
			set[filepath.Join(modRoot, filepath.FromSlash(line))] = true
		}
		return nil
	}
	if err := collect("diff", "--name-only", ref); err != nil {
		return nil, err
	}
	if err := collect("ls-files", "--others", "--exclude-standard"); err != nil {
		return nil, err
	}
	return set, nil
}

// annotationEscape encodes a message for the workflow-command grammar.
func annotationEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
