// Command itv-vet runs the project's static-analysis suite: six checks
// that enforce the OCS concurrency and failure-handling invariants
// (mortal references, no mutex across RPC, injected clocks, stoppable
// goroutines, errors.Is, metric naming).  See internal/lint and the
// "Static invariants" section of DESIGN.md.
//
// Usage:
//
//	itv-vet [flags] [packages]
//
//	itv-vet ./...                 # whole module (the CI gate)
//	itv-vet -json ./... > vet.json
//	itv-vet -checks rawerrcmp -fix ./...
//	itv-vet -list
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad
// patterns, unparsable source).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"itv/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array (for CI diffing)")
		fix      = flag.Bool("fix", false, "mechanically rewrite rawerrcmp findings to errors.Is")
		list     = flag.Bool("list", false, "list registered checks and exit")
		checks   = flag.String("checks", "", "comma-separated checks to run (default: all)")
		typeErrs = flag.Bool("typeerrors", false, "print tolerated type-check errors to stderr")
	)
	flag.Parse()

	if *list {
		for _, c := range lint.All() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	selected, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itv-vet:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itv-vet: %s: %v\n", dir, err)
			return 2
		}
		if *typeErrs {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "itv-vet: typecheck: %v\n", te)
			}
		}
		pkgs = append(pkgs, pkg)
	}

	if *fix {
		files, err := lint.FixRawErrCmp(pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itv-vet: fix:", err)
			return 2
		}
		for _, f := range files {
			fmt.Println("fixed", f)
		}
		return 0
	}

	diags := lint.Run(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "itv-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "itv-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
