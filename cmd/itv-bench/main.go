// itv-bench runs the reproduction's experiment suite — one experiment per
// figure/claim in the paper's evaluation — and prints paper-style result
// tables.  See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
//	go run ./cmd/itv-bench            # all experiments
//	go run ./cmd/itv-bench -only E4   # one experiment
//	go run ./cmd/itv-bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"itv/internal/experiments"
)

var suite = []struct {
	id, what string
	run      func() *experiments.Table
}{
	{"E1", "Fig. 1/§3.1 topology and admission", experiments.E1Topology},
	{"E2", "Fig. 3/§9.3 application download", experiments.E2AppDownload},
	{"E3", "Fig. 4 movie-open message counts", experiments.E3MovieOpen},
	{"E4", "§9.7 fail-over time vs intervals", experiments.E4Failover},
	{"E5", "§7.1/§7.2.1 audit message scaling", experiments.E5AuditMessages},
	{"E6", "§9.6 linear capacity scaling", experiments.E6Scaling},
	{"E7", "§8.2 recovery storms", experiments.E7RecoveryStorm},
	{"E8", "§5.1/§11 selector policies", experiments.E8Selectors},
	{"E9", "§4.6 name-service behaviour", experiments.E9NameService},
	{"E10", "§3.5.2 MDS crash recovery", experiments.E10MDSCrash},
	{"E11", "§7.1 resource leakage", experiments.E11Leakage},
	{"E12", "§9.3 response times", experiments.E12ResponseTime},
	{"E13", "§9.5 kill/restart invisibility", experiments.E13Restart},
	{"E14", "§9.1 new-service recipe", experiments.E14NewService},
}

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range suite {
			fmt.Printf("  %-4s %s\n", e.id, e.what)
		}
		return
	}

	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		tab := e.run()
		fmt.Println(tab.Format())
		fmt.Printf("  [%s completed in %v wall time]\n\n", e.id, time.Since(start).Truncate(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment %q; use -list\n", *only)
		os.Exit(1)
	}
}
