// itv-admin is the operator tool (§6.2): it inspects the cluster name
// space, queries name-service and cluster status, and drives the SSC/CSC —
// listing, starting, stopping, killing and moving services.
//
//	itv-admin [-ns host:port] list [path]     # name-space listing (Fig. 8)
//	itv-admin [-ns host:port] resolve <name>  # resolve a name to a reference
//	itv-admin [-ns host:port] status          # name-service + CSC view
//	itv-admin [-ns host:port] running <host>  # services an SSC is running
//	itv-admin [-ns host:port] kill <host> <svc>
//	itv-admin [-ns host:port] stop <host> <svc>
//	itv-admin [-ns host:port] start <host> <svc>
//	itv-admin [-ns host:port] move <svc> <host,...>
//	itv-admin metrics <host:port>             # scrape a node's obs registry
//	itv-admin events [host ...]               # merged cluster flight recorder
//	itv-admin trace <trace-id> [host ...]     # one failover's causal timeline
//	itv-admin watch [-once] [-interval 2s] [host ...]  # live RED dashboard (_health RPC)
//	itv-admin slow [host ...]                 # per-node slow-call ledgers (_slow RPC)
//	itv-admin profile [-seconds N] [-rate R] [-o file] <kind> <host>  # pull a pprof profile
//
// Cross-node timelines (events, trace) are merged in hybrid-logical-clock
// order, not wall order, so they stay causally correct even when server
// clocks disagree; pairs the clocks cannot order are marked "?~" using the
// cluster's measured offset uncertainty.
//
// Tail-latency attribution (DESIGN.md §13): `metrics` and `watch` print a
// live trace id next to each histogram's quantiles (the p99 exemplar),
// `trace` resolves it to the cluster timeline, `slow` shows which calls
// crossed the adaptive threshold and where their time went
// (queue/service/flush), and `profile` pulls a runtime profile from the
// blamed node.  Nodes that fail a scrape are rendered as explicit
// UNREACHABLE rows with the connection error class, not silently skipped.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"itv/internal/clock"
	"itv/internal/cmgr"
	"itv/internal/core"
	"itv/internal/csc"
	"itv/internal/names"
	"itv/internal/obs"
	"itv/internal/orb"
	"itv/internal/ssc"
	"itv/internal/transport"
)

func main() {
	nsAddr := flag.String("ns", "127.0.0.1:555", "name-service replica address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ep, err := orb.NewEndpoint(transport.TCP())
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	sess := core.NewSession(ep, names.RootRefAt(*nsAddr), clock.Real())

	switch args[0] {
	case "list":
		path := ""
		if len(args) > 1 {
			path = args[1]
		}
		listTree(sess, path, 0)

	case "resolve":
		if len(args) < 2 {
			log.Fatal("usage: resolve <name>")
		}
		ref, err := sess.Root.Resolve(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ref)
		if err := ep.Ping(ref); err != nil {
			fmt.Println("liveness: DEAD —", err)
		} else {
			fmt.Println("liveness: up")
		}

	case "status":
		role, term, master, seq, err := names.StatusOf(ep, *nsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("name service %s: %s, term %d, master %s, seq %d\n",
			*nsAddr, role, term, master, seq)
		stub := csc.NewStub(sess)
		st, err := stub.Status()
		if err != nil {
			fmt.Println("csc: unavailable:", err)
			return
		}
		fmt.Println("cluster (per the acting CSC):")
		for h, up := range st {
			state := "UP"
			if !up {
				state = "DOWN"
			}
			fmt.Printf("  %-16s %s\n", h, state)
		}

	case "running":
		if len(args) < 2 {
			log.Fatal("usage: running <host>")
		}
		stub := ssc.Stub{Ep: ep, Ref: ssc.RefAt(args[1])}
		svcs, err := stub.Running()
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range svcs {
			fmt.Println(" ", s)
		}

	case "kill", "stop", "start":
		if len(args) < 3 {
			log.Fatalf("usage: %s <host> <svc>", args[0])
		}
		stub := ssc.Stub{Ep: ep, Ref: ssc.RefAt(args[1])}
		var err error
		switch args[0] {
		case "kill":
			err = stub.Kill(args[2])
		case "stop":
			err = stub.Stop(args[2])
		case "start":
			err = stub.Start(args[2])
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s on %s: ok\n", args[0], args[2], args[1])

	case "usage":
		// §7.3 resource accounting from the caller's neighborhood cmgr.
		ref, err := sess.Root.Resolve("svc/cmgr")
		if err != nil {
			// No neighborhood match for an admin host: take any replica.
			all, lerr := sess.Root.ListRepl("svc/cmgr")
			if lerr != nil || len(all) == 0 {
				log.Fatal(err)
			}
			ref = all[0].Ref
		}
		report, err := (cmgr.Stub{Ep: ep, Ref: ref}).Usage()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8s %8s %14s\n", "settop", "opened", "denied", "Mbit-seconds")
		for _, u := range report {
			fmt.Printf("%-18s %8d %8d %14.1f\n", u.Settop, u.Opened, u.Denied, u.MbitSeconds)
		}

	case "metrics":
		// Scrape any ORB endpoint's node registry over the wire (the
		// built-in _metrics operation; works against servers that never
		// opened a debug HTTP port).
		if len(args) < 2 {
			log.Fatal("usage: metrics <host:port>")
		}
		text, err := ep.MetricsOf(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		// Latency quantiles, interpolated from the histogram buckets above,
		// with the highest-bucket exemplar's trace id beside them — the
		// sampled call an operator chasing the p99 resolves via `trace`.
		samples := obs.ParseText(text)
		exes := obs.ParseExemplars(samples)
		if sums := obs.SummarizeHistograms(samples); len(sums) > 0 {
			fmt.Printf("\n%-44s %8s %8s %8s %8s %18s\n", "HISTOGRAM", "COUNT", "P50", "P95", "P99", "TRACE")
			for _, s := range sums {
				trace := "-"
				if ex, ok := obs.TopExemplar(exes, s.Name); ok {
					trace = fmt.Sprintf("%016x", ex.Trace)
				}
				fmt.Printf("%-44s %8d %8s %8s %8s %18s\n", s.Name, s.Count, s.P50, s.P95, s.P99, trace)
			}
		}

	case "events":
		// Fan the built-in _events scrape out across the cluster and print
		// one merged timeline in HLC order (wall order lies across skewed
		// machines); unorderable neighbors are marked "?~".
		hosts, err := clusterHosts(sess, args[1:])
		if err != nil {
			log.Fatal(err)
		}
		merged := obs.MergeEventsHLC(scrapeEvents(ep, hosts)...)
		obs.WriteEventsHLC(os.Stdout, merged, clusterUncertainty(ep, hosts))

	case "trace":
		// Reconstruct one failover end-to-end: every node's flight-recorder
		// entries carrying the given trace id, in causal (HLC) order.
		if len(args) < 2 {
			log.Fatal("usage: trace <trace-id> [host ...]")
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 64)
		if err != nil || id == 0 {
			log.Fatalf("bad trace id %q (want hex, e.g. 4a1f00d2c3b4a596)", args[1])
		}
		hosts, err := clusterHosts(sess, args[2:])
		if err != nil {
			log.Fatal(err)
		}
		merged := obs.MergeEventsHLC(scrapeEvents(ep, hosts)...)
		chain := obs.FilterTrace(merged, id)
		if len(chain) == 0 {
			log.Fatalf("no events for trace %016x (rings are bounded; scrape sooner)", id)
		}
		obs.WriteEventsHLC(os.Stdout, chain, clusterUncertainty(ep, hosts))

	case "watch":
		// Live cluster dashboard: every node's _health windows rendered as
		// per-method RED rows (rate, errors, p50/p99) plus runtime gauges
		// and measured clock offsets.
		wf := flag.NewFlagSet("watch", flag.ExitOnError)
		once := wf.Bool("once", false, "render a single frame and exit")
		interval := wf.Duration("interval", 2*time.Second, "refresh interval")
		wf.Parse(args[1:])
		hosts, err := clusterHosts(sess, wf.Args())
		if err != nil {
			log.Fatal(err)
		}
		clk := clock.Real()
		for {
			var reports []*obs.HealthReport
			var down []string
			for _, h := range hosts {
				rep, err := ep.HealthOf(sscAddr(h), 0)
				if err != nil {
					// A dead node is part of the dashboard, not a footnote on
					// stderr: show it as an explicit row with the failure class.
					down = append(down, fmt.Sprintf("node %-15s UNREACHABLE (%s)", h, orb.ConnClass(err)))
					continue
				}
				reports = append(reports, rep)
			}
			if !*once {
				fmt.Print("\x1b[H\x1b[2J") // clear screen, cursor home
			}
			for _, line := range down {
				fmt.Println(line)
			}
			obs.RenderHealth(os.Stdout, reports, 24)
			if *once {
				return
			}
			clk.Sleep(*interval)
		}

	case "slow":
		// Fan the built-in _slow scrape out across the cluster: each node's
		// ledger of calls past its adaptive tail threshold, with the
		// queue/service/flush split saying where the time went.
		hosts, err := clusterHosts(sess, args[1:])
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hosts {
			rep, err := ep.SlowOf(sscAddr(h))
			if err != nil {
				fmt.Printf("node %-15s UNREACHABLE (%s)\n", h, orb.ConnClass(err))
				continue
			}
			fmt.Printf("# node %s  tail-estimate %s  entries %d\n", h, rep.Estimate, len(rep.Calls))
			obs.WriteSlowCalls(os.Stdout, rep.Calls)
		}

	case "profile":
		// Pull a runtime profile from one node over the ORB (_profile RPC):
		// cpu, heap, goroutine, mutex or block, written as pprof's gzipped
		// protobuf for `go tool pprof`.
		pf := flag.NewFlagSet("profile", flag.ExitOnError)
		seconds := pf.Int("seconds", 5, "collection window for cpu/mutex/block profiles")
		rate := pf.Int("rate", 0, "mutex fraction / block rate during collection (0 = default)")
		out := pf.String("o", "", "output file (default <kind>.pb.gz)")
		pf.Parse(args[1:])
		rest := pf.Args()
		if len(rest) < 2 {
			log.Fatal("usage: profile [-seconds N] [-rate R] [-o file] <cpu|heap|goroutine|mutex|block> <host>")
		}
		kind, host := rest[0], rest[1]
		// Timed collections run synchronously inside the first call; give the
		// round trip room beyond the collection window.
		ep.SetCallTimeout(time.Duration(*seconds)*time.Second + 30*time.Second)
		data, err := ep.ProfileOf(sscAddr(host), kind, *seconds, *rate)
		if err != nil {
			log.Fatal(err)
		}
		name := *out
		if name == "" {
			name = kind + ".pb.gz"
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s profile of %s: %d bytes -> %s\n", kind, host, len(data), name)

	case "move":
		if len(args) < 3 {
			log.Fatal("usage: move <svc> <host,...>")
		}
		stub := csc.NewStub(sess)
		if err := stub.Move(args[1], strings.Split(args[2], ",")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("move %s -> %s: recorded; the CSC applies it on its next round\n", args[1], args[2])

	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// clusterHosts resolves the target host list: the ones given, or every
// server the acting CSC knows.
func clusterHosts(sess *core.Session, hosts []string) ([]string, error) {
	if len(hosts) > 0 {
		return hosts, nil
	}
	st, err := csc.NewStub(sess).Status()
	if err != nil {
		return nil, fmt.Errorf("no hosts given and CSC unavailable: %w", err)
	}
	for h := range st {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts, nil
}

// sscAddr turns a bare host into its SSC endpoint address.
func sscAddr(h string) string {
	if strings.Contains(h, ":") {
		return h
	}
	return fmt.Sprintf("%s:%d", h, ssc.WellKnownPort)
}

// scrapeEvents fetches every host's flight-recorder ring.
func scrapeEvents(ep *orb.Endpoint, hosts []string) [][]obs.Event {
	var lists [][]obs.Event
	for _, h := range hosts {
		addr := sscAddr(h)
		evs, err := ep.EventsOf(addr)
		if err != nil {
			// A down node is part of the story, not a reason to abort the
			// scrape: render it as an explicit row and keep merging survivors.
			fmt.Printf("node %-15s UNREACHABLE (%s)\n", h, orb.ConnClass(err))
			continue
		}
		lists = append(lists, evs)
	}
	return lists
}

// clusterUncertainty returns the worst measured clock-offset uncertainty
// across the scraped nodes (the clock_offset_unc_ms gauges the CSC ping and
// RAS poll loops maintain), floored at 2ms — the bound WriteEventsHLC uses
// to flag orderings the clocks cannot prove.
func clusterUncertainty(ep *orb.Endpoint, hosts []string) time.Duration {
	unc := 2 * time.Millisecond
	for _, h := range hosts {
		text, err := ep.MetricsOf(sscAddr(h))
		if err != nil {
			continue
		}
		for _, s := range obs.ParseText(text) {
			if strings.HasPrefix(s.Name, "clock_offset_unc_ms") {
				if d := time.Duration(s.Value) * time.Millisecond; d > unc {
					unc = d
				}
			}
		}
	}
	return unc
}

// listTree prints the name space as an indented tree (Fig. 8).
func listTree(sess *core.Session, path string, depth int) {
	bindings, err := sess.Root.List(path)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range bindings {
		full := b.Name
		if path != "" {
			full = path + "/" + b.Name
		}
		fmt.Printf("%s%-20s %s\n", strings.Repeat("  ", depth), b.Name, b.Ref.TypeID)
		if names.IsContextType(b.Ref.TypeID) {
			// Replicated contexts are expanded through listRepl so every
			// replica shows, not just the selected one.
			if b.Ref.TypeID == names.TypeReplContext {
				all, err := sess.Root.ListRepl(full)
				if err == nil {
					for _, r := range all {
						fmt.Printf("%s%-20s %s\n", strings.Repeat("  ", depth+1), r.Name, r.Ref.TypeID)
					}
					continue
				}
			}
			listTree(sess, full, depth+1)
		}
	}
}
