// itv-benchgate parses `go test -bench` output and enforces the committed
// allocation budget for the RPC hot path, so a PR that quietly re-adds
// per-call garbage fails CI rather than landing.
//
// Usage (see .github/workflows/ci.yml):
//
//	go test -run xxx -bench 'ORBInvoke|WireRoundTrip' -benchmem -benchtime=1x . \
//	  | go run ./cmd/itv-benchgate -baseline BENCH_pr3.json -out bench_ci.json
//
// The baseline file carries both the recorded perf trajectory (before/after
// of the PR that introduced it) and a "gates" section mapping benchmark
// names to the maximum allocs/op CI tolerates.  The tool writes the parsed
// results as a JSON artifact and exits nonzero on any gate breach.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"` // custom metrics (wire_B/op, frames/op, ...)
}

// baseline mirrors the committed BENCH_*.json schema.
type baseline struct {
	Gates map[string]struct {
		MaxAllocsOp float64 `json:"max_allocs_op"`
	} `json:"gates"`
}

// benchLine matches e.g.
//
//	BenchmarkORBInvoke-8  269827  8417 ns/op  1.000 frames/op  27.94 wire_B/op  1608 B/op  33 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_*.json with a gates section")
	outPath := flag.String("out", "", "write parsed results as JSON here")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "itv-benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *outPath != "" {
		blob, _ := json.MarshalIndent(map[string]any{"results": results}, "", "  ")
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	failed := false
	if *baselinePath != "" {
		var base baseline
		blob, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(blob, &base); err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		for name, gate := range base.Gates {
			r, ok := results[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "GATE MISSING  %-28s not found in bench output\n", name)
				failed = true
				continue
			}
			if r.AllocsOp > gate.MaxAllocsOp {
				fmt.Fprintf(os.Stderr, "GATE FAIL     %-28s %.0f allocs/op > budget %.0f\n",
					name, r.AllocsOp, gate.MaxAllocsOp)
				failed = true
			} else {
				fmt.Printf("gate ok       %-28s %.0f allocs/op <= budget %.0f\n",
					name, r.AllocsOp, gate.MaxAllocsOp)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parse reads `go test -bench` output, returning results keyed by benchmark
// name with the -GOMAXPROCS suffix stripped.
func parse(f *os.File) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		r := benchResult{Extra: map[string]float64{}}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				r.Extra[fields[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		results[m[1]] = r
	}
	return results, sc.Err()
}
