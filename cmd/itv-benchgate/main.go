// itv-benchgate parses `go test -bench` output and enforces the committed
// perf budget for the RPC hot path — allocations, latency, and throughput —
// so a PR that quietly re-adds per-call garbage or halves calls/sec fails
// CI rather than landing.
//
// Usage (see .github/workflows/ci.yml):
//
//	go test -run xxx -bench 'ORBInvoke|WireRoundTrip' -benchmem -benchtime=1x . \
//	  | go run ./cmd/itv-benchgate -baseline BENCH_pr8.json -out bench_ci.json
//
// The baseline file carries both the recorded perf trajectory (before/after
// of the PR that introduced it) and a "gates" section mapping benchmark
// names to budgets.  Each gate may set any of:
//
//	max_allocs_op  — allocation ceiling, enforced EXACTLY (allocs are
//	                 deterministic in steady state; no tolerance applies)
//	max_ns_op      — latency ceiling in ns/op
//	min_extra      — floors on custom metrics, e.g. {"calls/s": 50000}
//	max_extra      — ceilings on custom metrics, e.g. {"frames/op": 0.9}
//	tolerance_pct  — slack applied to max_ns_op / min_extra / max_extra
//	                 (CI machines are noisy; allocs are not)
//
// A gate naming a metric the benchmark did not report is a failure — a
// silently vanished metric must not read as a pass.  The tool writes the
// parsed results as a JSON artifact and exits nonzero on any gate breach.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"` // custom metrics (wire_B/op, frames/op, ...)
}

// gate is one benchmark's committed budget.  Pointer fields distinguish
// "absent" from a literal zero budget (max_allocs_op: 0 is a real, strict
// gate on the local-invoke path).
type gate struct {
	MaxAllocsOp  *float64           `json:"max_allocs_op,omitempty"`
	MaxNsOp      *float64           `json:"max_ns_op,omitempty"`
	MinExtra     map[string]float64 `json:"min_extra,omitempty"`
	MaxExtra     map[string]float64 `json:"max_extra,omitempty"`
	TolerancePct float64            `json:"tolerance_pct,omitempty"`
}

// baseline mirrors the committed BENCH_*.json schema.
type baseline struct {
	Gates map[string]gate `json:"gates"`
}

// benchLine matches e.g.
//
//	BenchmarkORBInvoke-8  269827  8417 ns/op  1.000 frames/op  27.94 wire_B/op  1608 B/op  33 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_*.json with a gates section")
	outPath := flag.String("out", "", "write parsed results as JSON here")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "itv-benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *outPath != "" {
		blob, _ := json.MarshalIndent(map[string]any{"results": results}, "", "  ")
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	failed := false
	if *baselinePath != "" {
		var base baseline
		blob, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(blob, &base); err != nil {
			fmt.Fprintf(os.Stderr, "itv-benchgate: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		names := make([]string, 0, len(base.Gates))
		for name := range base.Gates {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			g := base.Gates[name]
			r, ok := results[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "GATE MISSING  %-32s not found in bench output\n", name)
				failed = true
				continue
			}
			if !checkGate(name, g, r) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkGate enforces one benchmark's budget, printing one line per bound.
// Allocation ceilings are exact; latency and custom-metric bounds get the
// gate's tolerance_pct of slack (in the regression-permitting direction)
// because CI machines are noisy in time but deterministic in allocs.
func checkGate(name string, g gate, r benchResult) bool {
	ok := true
	slack := 1 + g.TolerancePct/100
	bound := func(metric string, got float64, pass bool, cmp string, budget float64) {
		if pass {
			fmt.Printf("gate ok       %-32s %g %s %s budget %g\n", name, got, metric, cmp, budget)
		} else {
			fmt.Fprintf(os.Stderr, "GATE FAIL     %-32s %g %s breaches budget %g\n", name, got, metric, budget)
			ok = false
		}
	}
	if g.MaxAllocsOp != nil {
		bound("allocs/op", r.AllocsOp, r.AllocsOp <= *g.MaxAllocsOp, "<=", *g.MaxAllocsOp)
	}
	if g.MaxNsOp != nil {
		bound("ns/op", r.NsOp, r.NsOp <= *g.MaxNsOp*slack, "<~", *g.MaxNsOp)
	}
	keys := func(m map[string]float64) []string {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	for _, metric := range keys(g.MinExtra) {
		budget := g.MinExtra[metric]
		got, have := r.Extra[metric]
		if !have {
			fmt.Fprintf(os.Stderr, "GATE FAIL     %-32s metric %q not reported\n", name, metric)
			ok = false
			continue
		}
		bound(metric, got, got >= budget/slack, ">~", budget)
	}
	for _, metric := range keys(g.MaxExtra) {
		budget := g.MaxExtra[metric]
		got, have := r.Extra[metric]
		if !have {
			fmt.Fprintf(os.Stderr, "GATE FAIL     %-32s metric %q not reported\n", name, metric)
			ok = false
			continue
		}
		bound(metric, got, got <= budget*slack, "<~", budget)
	}
	return ok
}

// parse reads `go test -bench` output, returning results keyed by benchmark
// name with the -GOMAXPROCS suffix stripped.
func parse(f *os.File) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		r := benchResult{Extra: map[string]float64{}}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				r.Extra[fields[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		results[m[1]] = r
	}
	return results, sc.Err()
}
