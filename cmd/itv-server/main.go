// itv-server runs one complete ITV server node over real TCP on localhost
// — the closest analogue of an Orlando SGI Challenge server.  It brings up
// the §6.3 boot sequence with the deployed §9.7 intervals: SSC, name
// service, Settop Manager, RAS, database, then boot/kernel services, the
// Connection Manager for neighborhood 1, the MDS, RDS, MMS and VOD.
//
// Drive it with cmd/itv-admin from another terminal:
//
//	go run ./cmd/itv-server
//	go run ./cmd/itv-admin -ns 127.0.0.1:555 list svc
//	go run ./cmd/itv-admin status
//	go run ./cmd/itv-admin kill mds
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"itv/internal/atm"
	"itv/internal/audit"
	"itv/internal/bootsvc"
	"itv/internal/clock"
	"itv/internal/cmgr"
	"itv/internal/core"
	"itv/internal/csc"
	"itv/internal/db"
	"itv/internal/media"
	"itv/internal/mms"
	"itv/internal/names"
	"itv/internal/obs"
	"itv/internal/orb"
	"itv/internal/oref"
	"itv/internal/proc"
	"itv/internal/rds"
	"itv/internal/settopmgr"
	"itv/internal/ssc"
	"itv/internal/transport"
	"itv/internal/vod"
)

func main() {
	dbPath := flag.String("db", "itv-server.db", "database log file (persistent across restarts)")
	name := flag.String("name", "forge", "server name (Fig. 4's forge/kiln)")
	debugAddr := flag.String("debug", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
	flag.Parse()

	tr := transport.TCP()
	clk := clock.Real()
	host := tr.Host()

	if *debugAddr != "" {
		// Every service on this node shares the host registry, so one
		// scrape covers the ORB, transport, names, RAS and SSC counters.
		addr, err := obs.ServeDebug(*debugAddr, obs.Node(host).WriteText, func(w io.Writer) {
			obs.WriteEvents(w, obs.NodeRecorder(host).Events())
		}, func(w io.Writer) {
			h := obs.NodeHealth(host)
			obs.RenderHealth(w, []*obs.HealthReport{h.Report(clock.Real().Now(), 0)}, 24)
		}, func(w io.Writer) {
			obs.WriteSlowCalls(w, obs.NodeSlowLedger(host).Calls())
		})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		fmt.Printf("debug server on http://%s/metrics\n", addr)
	}

	// §6.3 step 1: the SSC comes up first.
	ctl, err := ssc.New(tr, clk)
	if err != nil {
		log.Fatalf("ssc: %v (is another itv-server already running?)", err)
	}
	fmt.Printf("SSC up on %s:%d\n", host, ssc.WellKnownPort)

	fabric := atm.New()
	fabric.AddServer(host, 0)
	store, err := db.NewStore(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	nsAddr := fmt.Sprintf("%s:%d", host, names.WellKnownPort)

	session := func(p *proc.Process) (*core.Session, error) {
		ep, err := orb.NewEndpoint(tr)
		if err != nil {
			return nil, err
		}
		p.OnKill(ep.Close)
		return core.NewSession(ep, names.RootRefAt(nsAddr), clk), nil
	}

	// §6.3 step 2: basic services.
	ctl.AddSpec(ssc.ServiceSpec{Name: "ns", Start: func(p *proc.Process, _ *ssc.Controller) error {
		r, err := names.NewReplica(tr, clk, names.Config{Peers: []string{nsAddr}})
		if err != nil {
			return err
		}
		p.OnKill(r.Close)
		r.SetChecker(audit.Checker{Ep: r.Endpoint(), Ref: audit.RefAt(host)})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "mgr", Start: func(p *proc.Process, _ *ssc.Controller) error {
		m, err := settopmgr.New(tr, clk)
		if err != nil {
			return err
		}
		p.OnKill(m.Close)
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "ras", Start: func(p *proc.Process, _ *ssc.Controller) error {
		r, err := audit.New(tr, clk, audit.Config{})
		if err != nil {
			return err
		}
		p.OnKill(r.Close)
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "db", Start: func(p *proc.Process, _ *ssc.Controller) error {
		svc, err := db.New(tr, store)
		if err != nil {
			return err
		}
		p.OnKill(svc.Close)
		return nil
	}})

	// App services.
	ctl.AddSpec(ssc.ServiceSpec{Name: "boot", Start: func(p *proc.Process, _ *ssc.Controller) error {
		ep, err := orb.NewEndpointOn(tr, bootsvc.WellKnownPort)
		if err != nil {
			return err
		}
		p.OnKill(ep.Close)
		b := bootsvc.NewBoot(core.NewSession(ep, names.RootRefAt(nsAddr), clk))
		b.SetFallback(bootsvc.Params{NameService: nsAddr, Servers: []string{host}})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "kernel", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		k := bootsvc.NewKernel(sess, make([]byte, 1<<20))
		el := sess.NewElector(bootsvc.KernelName, k.Ref())
		el.Start()
		p.OnKill(el.Abandon)
		c.NotifyReady(p.PID(), []oref.Ref{k.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "cmgr-1", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		cm := cmgr.New(sess, fabric, "1")
		cm.Start()
		p.OnKill(cm.Abort)
		c.NotifyReady(p.PID(), []oref.Ref{cm.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "mds", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		m := media.New(sess, *name, []media.MovieInfo{
			{Title: "T2", Size: 4_000_000_000, Bitrate: 4 * atm.Mbps},
			{Title: "Casablanca", Size: 2_400_000_000, Bitrate: 3 * atm.Mbps},
		})
		if err := m.Register(); err != nil {
			return err
		}
		c.NotifyReady(p.PID(), []oref.Ref{m.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "rds-1", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		r := rds.New(sess, "1", host)
		r.Put("navigator", make([]byte, 2<<20))
		if err := r.Register(); err != nil {
			return err
		}
		c.NotifyReady(p.PID(), []oref.Ref{r.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "mms", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		m := mms.New(sess, audit.RefAt(host))
		m.Start()
		p.OnKill(m.Abort)
		c.NotifyReady(p.PID(), []oref.Ref{m.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "vod", Start: func(p *proc.Process, c *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		v := vod.New(sess)
		v.Start()
		p.OnKill(v.Abort)
		c.NotifyReady(p.PID(), []oref.Ref{v.Ref()})
		return nil
	}})
	ctl.AddSpec(ssc.ServiceSpec{Name: "csc", Start: func(p *proc.Process, _ *ssc.Controller) error {
		sess, err := session(p)
		if err != nil {
			return err
		}
		cc := csc.New(sess, db.RefAt(host))
		cc.Start()
		p.OnKill(cc.Abort)
		return nil
	}})

	// Placement config so the CSC keeps this node converged.
	store.Put(csc.ServersTable, host, "")
	for _, svc := range []string{"ns", "mgr", "ras", "db", "boot", "kernel", "cmgr-1", "mds", "rds-1", "mms", "vod", "csc"} {
		store.Put(csc.ServicesTable, svc, host)
	}

	// §6.3 ordering: basic services first, then wait for the name-service
	// master election (step 3) before registering the rest (step 4).
	for _, svc := range []string{"ns", "mgr", "ras", "db"} {
		if err := ctl.StartService(svc); err != nil {
			log.Fatalf("start %s: %v", svc, err)
		}
		fmt.Printf("  started %s\n", svc)
	}
	fmt.Print("  waiting for name-service master election")
	for {
		role, _, _, _, err := names.StatusOf(ctl.Endpoint(), nsAddr)
		if err == nil && role == "master" {
			break
		}
		fmt.Print(".")
		clk.Sleep(500 * time.Millisecond)
	}
	fmt.Println(" elected")
	for _, svc := range []string{"boot", "kernel", "cmgr-1", "mds", "rds-1", "mms", "vod", "csc"} {
		if err := ctl.StartService(svc); err != nil {
			log.Fatalf("start %s: %v", svc, err)
		}
		fmt.Printf("  started %s\n", svc)
	}

	fmt.Printf("\nserver %q is up; name service at %s\n", *name, nsAddr)
	fmt.Println("drive it with: go run ./cmd/itv-admin -ns", nsAddr, "status")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
	ctl.Close()
}
