// itv-cluster boots the full Orlando configuration on the in-memory
// test-bed and runs an interactive-TV load against it: settops boot,
// change channels, play movies, and occasionally crash, while injected
// server faults exercise the recovery machinery.  A status line is printed
// each simulated minute.
//
//	go run ./cmd/itv-cluster -settops 24 -minutes 30 -chaos
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"itv/internal/cluster"
	"itv/internal/obs"
	"itv/internal/orb"
	"itv/internal/settop"
)

func main() {
	nSettops := flag.Int("settops", 12, "settops to boot (spread over 6 neighborhoods)")
	minutes := flag.Int("minutes", 10, "simulated minutes to run")
	chaos := flag.Bool("chaos", false, "inject service kills and settop crashes")
	seed := flag.Int64("seed", 1995, "random seed")
	debugAddr := flag.String("debug", "", "serve cluster-wide /metrics, /healthz and /debug/pprof on this address")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	if *debugAddr != "" {
		// The simulated servers all live in this process, so one endpoint
		// exposes every node's registry, grouped by host.
		addr, err := obs.ServeDebug(*debugAddr, obs.WriteAllNodes, obs.WriteAllEvents, obs.WriteAllHealth, obs.WriteAllSlow)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debug server on http://%s/metrics\n", addr)
	}

	c := cluster.New(cluster.Orlando())
	fmt.Println("booting the Orlando cluster (3 servers, 6 neighborhoods)...")
	c.Start()
	defer c.Stop()

	var settops []*settop.Settop
	for i := 0; i < *nSettops; i++ {
		nb := fmt.Sprintf("%d", i%6+1)
		st := c.NewSettop(nb, i/6)
		c.MustWaitFor("settop boot", func() bool {
			_, err := st.Boot()
			return err == nil
		})
		settops = append(settops, st)
	}
	fmt.Printf("%d settops booted\n", len(settops))

	apps := []string{"navigator", "vod", "shopping", "games"}
	titles := []string{"T2", "Casablanca", "Duck Amuck"}

	for minute := 1; minute <= *minutes; minute++ {
		// Viewer activity.
		for _, st := range settops {
			if !st.Up() {
				if _, err := st.Boot(); err == nil {
					fmt.Printf("  settop %s rebooted\n", st.Host())
				}
				continue
			}
			switch rng.Intn(5) {
			case 0:
				if _, _, err := st.ChangeChannel(apps[rng.Intn(len(apps))]); err != nil {
					fmt.Printf("  channel change failed on %s: %v\n", st.Host(), err)
				}
			case 1:
				if _, ok := st.Playback(); !ok {
					title := titles[rng.Intn(len(titles))]
					if err := st.OpenMovie(title); err != nil {
						fmt.Printf("  open %q failed on %s: %v\n", title, st.Host(), err)
					}
				}
			case 2:
				if _, ok := st.Playback(); ok {
					if _, _, err := st.PollPlayback(); orb.Dead(err) {
						if err := st.RecoverPlayback(); err != nil {
							fmt.Printf("  recovery failed on %s: %v\n", st.Host(), err)
						} else {
							fmt.Printf("  settop %s recovered its movie on another replica\n", st.Host())
						}
					}
				}
			case 3:
				_ = st.CloseMovie()
			}
		}

		// Chaos.
		if *chaos && rng.Intn(3) == 0 {
			srv := c.Servers[rng.Intn(len(c.Servers))]
			switch rng.Intn(3) {
			case 0:
				if err := srv.SSC.KillService("mds"); err == nil {
					fmt.Printf("  CHAOS: killed MDS on %s (SSC restarts it)\n", srv.Spec.Name)
				}
			case 1:
				if err := srv.SSC.KillService("mms"); err == nil {
					fmt.Printf("  CHAOS: killed MMS on %s\n", srv.Spec.Name)
				}
			case 2:
				st := settops[rng.Intn(len(settops))]
				if st.Up() {
					st.Crash()
					fmt.Printf("  CHAOS: settop %s lost power\n", st.Host())
				}
			}
		}

		if c.FakeClk != nil {
			for i := 0; i < 120; i++ {
				c.FakeClk.Advance(500 * time.Millisecond)
				time.Sleep(200 * time.Microsecond)
			}
		} else {
			time.Sleep(time.Minute)
		}

		playing := 0
		for _, st := range settops {
			if _, ok := st.Playback(); ok {
				playing++
			}
		}
		mmsSrv := c.MMSPrimary()
		mmsName := "NONE"
		if mmsSrv != nil {
			mmsName = mmsSrv.Spec.Name
		}
		fmt.Printf("[minute %2d] streams=%d playing=%d mms-primary=%s ns-master=%s\n",
			minute, c.Fabric.Conns(), playing, mmsName, nsMaster(c))
	}

	if c.Fabric.Conns() > 0 {
		// Open movies are fine; leaked ones are not.  Close everything and
		// verify reclamation.
		for _, st := range settops {
			if err := st.CloseMovie(); err != nil {
				fmt.Printf("  close on %s: %v\n", st.Host(), err)
			}
		}
		if !c.WaitFor(func() bool { return c.Fabric.Conns() == 0 }) {
			fmt.Println("LEAK DIAGNOSTICS:")
			for _, conn := range c.Fabric.List() {
				fmt.Printf("  %s %s %s->%s %d b/s\n", conn.ID, conn.Kind, conn.From, conn.To, conn.Rate)
			}
			for _, s := range c.Servers {
				if m := s.MMS(); m != nil {
					fmt.Printf("  mms on %s: primary=%v open=%d\n", s.Spec.Name, m.IsPrimary(), m.OpenCount())
				}
				if m := s.MDS(); m != nil {
					fmt.Printf("  mds on %s: load=%d\n", s.Spec.Name, m.Load())
				}
			}
			log.Fatal("connections leaked")
		}
	}
	if err := c.Fabric.CheckInvariants(); err != nil {
		log.Fatalf("bandwidth invariant violated: %v", err)
	}
	fmt.Println("run complete: all connections drained, bandwidth accounting consistent")
}

func nsMaster(c *cluster.Cluster) string {
	for _, s := range c.Servers {
		if ns := s.NS(); ns != nil && ns.IsMaster() {
			return s.Spec.Name
		}
	}
	return "NONE"
}
