module itv

go 1.22
